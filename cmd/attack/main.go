// Command attack runs the adversarial privacy bench: it sweeps the
// clustering backends across privacy budgets and packing layouts,
// mounts the reconstruction and linkage attacks of internal/attack on
// every run's observer-visible trace, and prints the measured
// identification and reconstruction rates next to their in-suite
// random-guess baselines.
//
//	attack -n 48 -k 4 -modes centralized,simulated -eps 0.693,100,1e6
//	attack -json out/ -check        # CI privacy-regression gate
//
// With -json DIR each sweep additionally writes a machine-readable
// ATTACK_<dataset>.json report; two same-seed invocations write
// byte-identical files. With -check the pinned thresholds of
// attack.DefaultThresholds are enforced and any violation exits 1:
// rates at the paper's ε = ln 2 must stay at their random baselines,
// and the non-private reference rows must stay well above them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/attack"
)

func main() {
	var (
		dataset    = flag.String("dataset", "cer", "cer or numed")
		n          = flag.Int("n", 48, "population (series count)")
		k          = flag.Int("k", 4, "clusters")
		iters      = flag.Int("iterations", 4, "max clustering iterations per run")
		modes      = flag.String("modes", "centralized,centralizeddp,simulated", "comma-separated backends (centralized, centralizeddp, simulated, networked)")
		eps        = flag.String("eps", "", "comma-separated ε grid (default 0.693,100,1e4,1e6)")
		pack       = flag.String("pack", "0", "comma-separated PackSlots grid for the distributed modes")
		exchanges  = flag.Int("exchanges", 20, "sum-phase gossip cycles (distributed modes)")
		seed       = flag.Uint64("seed", 1, "deterministic sweep seed")
		reps       = flag.Int("profile-reps", 1, "attacker profile observations per user")
		noise      = flag.Float64("profile-noise", 2.0, "attacker profile observation noise (σ, measure units)")
		topk       = flag.String("topk", "1,5", "comma-separated identification ranks to score")
		realCrypto = flag.Bool("real-crypto", false, "run distributed modes on the Damgård–Jurik test scheme")
		workers    = flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
		timeout    = flag.Duration("timeout", 30*time.Second, "networked exchange timeout")
		jsonDir    = flag.String("json", "", "also write ATTACK_*.json to this directory")
		check      = flag.Bool("check", false, "enforce the pinned privacy-regression thresholds; exit 1 on violation")
	)
	flag.Parse()

	cfg := attack.SweepConfig{
		Dataset:       *dataset,
		Population:    *n,
		K:             *k,
		MaxIterations: *iters,
		Exchanges:     *exchanges,
		Seed:          *seed,
		ProfileReps:   *reps,
		ProfileNoise:  *noise,
		RealCrypto:    *realCrypto,
		Workers:       *workers,
		Timeout:       *timeout,
	}
	var err error
	if cfg.Modes, err = parseModes(*modes); err != nil {
		fatal(err)
	}
	if cfg.Epsilons, err = parseFloats(*eps); err != nil {
		fatal(fmt.Errorf("-eps: %w", err))
	}
	if cfg.PackSlots, err = parseInts(*pack); err != nil {
		fatal(fmt.Errorf("-pack: %w", err))
	}
	if cfg.TopK, err = parseInts(*topk); err != nil {
		fatal(fmt.Errorf("-topk: %w", err))
	}

	rep, err := attack.Sweep(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}
	attack.WriteTable(os.Stdout, rep)

	if *jsonDir != "" {
		path, err := attack.WriteReport(*jsonDir, rep)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "attack: wrote %s\n", path)
	}
	if *check {
		if violations := attack.DefaultThresholds().Check(rep); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "attack: FAIL:", v)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "attack: privacy-regression gate passed")
	}
}

func parseModes(s string) ([]chiaroscuro.Mode, error) {
	var out []chiaroscuro.Mode
	for _, f := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "":
		case "centralized":
			out = append(out, chiaroscuro.Centralized)
		case "centralizeddp", "centralized-dp", "centraldp":
			out = append(out, chiaroscuro.CentralizedDP)
		case "simulated":
			out = append(out, chiaroscuro.Simulated)
		case "networked":
			out = append(out, chiaroscuro.Networked)
		default:
			return nil, fmt.Errorf("-modes: unknown mode %q", f)
		}
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attack:", err)
	os.Exit(1)
}
