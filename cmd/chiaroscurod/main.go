// Command chiaroscurod is the Chiaroscuro node daemon: one process per
// participant, speaking the binary wire protocol of internal/wireproto
// and running the full encrypted Diptych — encrypted means/noise sums,
// correction dissemination, epidemic threshold decryption — against
// its peers over TCP.
//
// Every daemon of a population is provisioned with the same protocol
// parameters and seed (which fix the deterministic exchange schedule)
// and its own key file naming its participant index. A two-node run:
//
//	chiaroscurod -genkeys /tmp/keys -population 2
//	chiaroscurod -key-file /tmp/keys/node-0.json -population 2 \
//	    -listen 127.0.0.1:7000 -metrics-addr 127.0.0.1:9100
//	chiaroscurod -key-file /tmp/keys/node-1.json -population 2 \
//	    -listen 127.0.0.1:7001 -bootstrap 127.0.0.1:7000
//
// SECURITY: -genkeys emits test-scheme key files (deterministic
// precomputed primes, zero secrecy) so a population can be provisioned
// with a copy-paste. A real deployment must provision real threshold
// key shares out of band.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/core"
	"chiaroscuro/internal/faultnet"
	"chiaroscuro/internal/mux"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/soak"
	"chiaroscuro/internal/timeseries"
	"chiaroscuro/internal/wireproto"
)

// progress mirrors the node's observer callbacks for the live
// /progress endpoint: the current phase position and every released
// iteration so far, as the event stream of the public Job API exposes
// them in-process.
type progress struct {
	mu sync.Mutex
	p  progressView
}

type progressView struct {
	Iteration int             `json:"iteration"`
	Phase     string          `json:"phase"`
	Cycle     int             `json:"cycle"`
	Of        int             `json:"of"`
	Released  []iterationView `json:"released"`
}

type iterationView struct {
	Iteration    int                 `json:"iteration"`
	Centroids    []timeseries.Series `json:"centroids"`
	EpsilonSpent float64             `json:"epsilon_spent"`
}

// observer returns the protocol hooks feeding this progress tracker.
func (pr *progress) observer() core.Observer {
	return core.Observer{
		Phase: func(iter int, phase core.Phase, cycle, of int) {
			pr.mu.Lock()
			pr.p.Iteration, pr.p.Phase, pr.p.Cycle, pr.p.Of = iter, phase.String(), cycle, of
			pr.mu.Unlock()
		},
		Iteration: func(tr core.IterationTrace, released []timeseries.Series) {
			pr.mu.Lock()
			pr.p.Released = append(pr.p.Released, iterationView{
				Iteration:    tr.Iteration,
				Centroids:    released,
				EpsilonSpent: tr.EpsilonSpent,
			})
			pr.mu.Unlock()
		},
	}
}

func (pr *progress) snapshot() progressView {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	v := pr.p
	v.Released = append([]iterationView(nil), pr.p.Released...)
	return v
}

// keyFile is the provisioning record one daemon boots from.
type keyFile struct {
	Scheme    string `json:"scheme"` // "dj-test"
	KeyBits   int    `json:"key_bits"`
	Degree    int    `json:"degree"` // Damgård–Jurik s
	Shares    int    `json:"shares"`
	Threshold int    `json:"threshold"`
	Index     int    `json:"index"` // participant index (key-share Index+1)
}

func main() {
	var (
		genkeys     = flag.String("genkeys", "", "write test key files for the whole population into this directory and exit")
		keyPath     = flag.String("key-file", "", "this node's key file (JSON, see -genkeys)")
		listen      = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		bootstrap   = flag.String("bootstrap", "", "address of any live peer (empty for the first node)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-style text metrics on this address (empty = off)")
		population  = flag.Int("population", 2, "population size (all daemons must agree)")
		dataset     = flag.String("dataset", "cer", "built-in generator: cer or numed")
		csvPath     = flag.String("csv", "", "CSV file with one series per row (row = participant index)")
		k           = flag.Int("k", 2, "number of clusters")
		eps         = flag.Float64("epsilon", math.Ln2, "total privacy budget")
		maxIt       = flag.Int("iterations", 1, "protocol iterations (fixed schedule)")
		exchanges   = flag.Int("exchanges", 0, "sum-phase gossip cycles (0 = Theorem 3 default)")
		dissCycles  = flag.Int("diss-cycles", 0, "correction-dissemination cycles (0 = derived)")
		decCycles   = flag.Int("decrypt-cycles", 0, "epidemic-decryption cycles (0 = derived)")
		smooth      = flag.Bool("smooth", true, "SMA smoothing of perturbed means")
		seed        = flag.Uint64("seed", 1, "shared deterministic seed (fixes the exchange schedule)")
		fracBits    = flag.Uint("frac-bits", 24, "fixed-point fractional bits")
		packSlots   = flag.Int("pack-slots", 0, "ciphertext packing slots (0 = auto from the plaintext space, 1 = off; all daemons must agree)")
		keyBits     = flag.Int("keybits", 128, "test-scheme key size for -genkeys (128/256/512/1024)")
		degree      = flag.Int("degree", 4, "Damgård–Jurik degree s for -genkeys")
		tau         = flag.Int("threshold", 0, "decryption threshold for -genkeys (0 = population/3, min 2)")
		timeout     = flag.Duration("exchange-timeout", 30*time.Second, "per-exchange blocking step bound")
		joinTimeout = flag.Duration("join-timeout", 5*time.Minute, "roster bootstrap bound")
		soakDur     = flag.Duration("soak", 0, "run the in-process chaos soak (crash-storm profile) for this long and exit (0 = off)")
		retries     = flag.Int("retries", 0, "exchange retry budget per slot (fault policy)")
		suspicionK  = flag.Int("suspicion-k", 0, "evict a peer after this many consecutive exchange failures (0 = never)")
		vnodes      = flag.Int("vnodes", 1, "host this many consecutive participants (key-file index onward) as virtual nodes behind one listener")
		stateDir    = flag.String("state-dir", "", "directory for this node's durable crash-recovery journal; relaunch with the same -state-dir after a crash to resume the run")
	)
	flag.Parse()

	if *soakDur > 0 {
		runSoak(*soakDur, *population, *seed)
		return
	}
	if *genkeys != "" {
		if err := writeKeyFiles(*genkeys, *population, *keyBits, *degree, *tau); err != nil {
			fatal(err)
		}
		return
	}
	if *keyPath == "" {
		fatal(fmt.Errorf("either -genkeys or -key-file is required"))
	}
	kf, err := loadKeyFile(*keyPath, *population)
	if err != nil {
		fatal(err)
	}
	scheme, err := chiaroscuro.NewTestScheme(kf.KeyBits, kf.Degree, kf.Shares, kf.Threshold)
	if err != nil {
		fatal(err)
	}

	data, dmin, dmax, kind, err := loadData(*csvPath, *dataset, *population, *seed)
	if err != nil {
		fatal(err)
	}
	if data.Len() != *population {
		fatal(fmt.Errorf("dataset has %d series for a population of %d", data.Len(), *population))
	}
	seeds := chiaroscuro.SeedCentroids(kind, *k, *seed+1)

	diss, dec := *dissCycles, *decCycles
	if diss == 0 || dec == 0 {
		d, e := chiaroscuro.FixedPhaseCycles(*population)
		if diss == 0 {
			diss = d
		}
		if dec == 0 {
			dec = e
		}
	}
	prog := &progress{}
	proto := core.Config{
		K:             *k,
		InitCentroids: seeds,
		DMin:          dmin,
		DMax:          dmax,
		Epsilon:       *eps,
		MaxIterations: *maxIt,
		Smooth:        *smooth,
		Exchanges:     *exchanges,
		DissCycles:    diss,
		DecryptCycles: dec,
		FracBits:      *fracBits,
		PackSlots:     *packSlots,
		Seed:          *seed,
	}
	policy := node.Policy{MaxRetries: *retries, SuspicionK: *suspicionK}

	if *vnodes > 1 {
		if *stateDir != "" {
			fatal(fmt.Errorf("-state-dir needs one daemon per participant; run without -vnodes to get crash recovery"))
		}
		runVirtual(virtualConfig{
			kf: kf, scheme: scheme, data: data, proto: proto, prog: prog,
			vnodes: *vnodes, population: *population,
			listen: *listen, bootstrap: *bootstrap, metricsAddr: *metricsAddr,
			timeout: *timeout, joinTimeout: *joinTimeout, policy: policy,
		})
		return
	}

	proto.Observer = prog.observer()
	// -state-dir: every commit point is fsynced into a per-participant
	// journal; a daemon relaunched with the same -state-dir (after a
	// crash, a kill -9, or a SIGTERM) resumes the run where the journal
	// left it, announcing itself with a Resume handshake instead of
	// rejoining from scratch. SIGTERM flushes through the same path:
	// the node's Close closes the journal after the last synced commit.
	var st *node.State
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fatal(err)
		}
		st, err = node.OpenState(filepath.Join(*stateDir, fmt.Sprintf("node-%d.journal", kf.Index)))
		if err != nil {
			fatal(err)
		}
		if st.Resuming() {
			fmt.Printf("chiaroscurod: journal %s holds a prior run; resuming\n", st.Path())
		}
	}
	nd, err := node.New(node.Config{
		Index:           kf.Index,
		N:               *population,
		Series:          data.Row(kf.Index),
		Scheme:          scheme,
		Proto:           proto,
		Listen:          *listen,
		Bootstrap:       *bootstrap,
		ExchangeTimeout: *timeout,
		JoinTimeout:     *joinTimeout,
		Policy:          policy,
		State:           st,
	})
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		fatal(err)
	}
	defer nd.Close()
	fmt.Printf("chiaroscurod: node %d/%d listening on %s\n", kf.Index, *population, nd.Addr())

	if *metricsAddr != "" {
		go serveMetrics(*metricsAddr, []*node.Node{nd}, nil, prog)
	}

	// SIGINT/SIGTERM cancel the run: the node closes its listener and
	// every live connection, the peers time the slot out, and the daemon
	// exits instead of hanging on half-finished exchanges.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	fmt.Printf("chiaroscurod: waiting for %d peers (bootstrap %q)\n", *population-1, *bootstrap)
	// Join polls the roster and is not context-aware; close the node on
	// cancellation so a SIGINT during the wait interrupts it promptly
	// instead of sitting out the join timeout.
	stopWatch := context.AfterFunc(ctx, func() { _ = nd.Close() })
	defer stopWatch()
	if err := nd.Join(); err != nil {
		if ctx.Err() != nil {
			fmt.Println("chiaroscurod: interrupted while waiting for peers")
			return
		}
		fatal(err)
	}
	fmt.Println("chiaroscurod: roster complete, protocol starting")
	start := time.Now()
	res, err := nd.RunContext(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("chiaroscurod: interrupted; listener and connections closed cleanly")
		return
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chiaroscurod: run complete in %s\n", time.Since(start).Round(time.Millisecond))
	for _, tr := range res.Traces {
		fmt.Printf("  iter %d: centroids %d→%d, ε %.4f, cycles sum/diss/dec %d/%d/%d\n",
			tr.Iteration, tr.CentroidsIn, tr.CentroidsOut, tr.EpsilonSpent,
			tr.SumCycles, tr.DissCycles, tr.DecryptCycles)
	}
	c := res.Counters
	fmt.Printf("final: %d centroids, ε spent %.4f, exchanges %d (init %d / resp %d), timeouts %d, sent %.1f kB, recv %.1f kB\n",
		len(res.Centroids), res.TotalEpsilon, c.Exchanges(), c.Initiated, c.Responded,
		c.Timeouts, float64(c.BytesSent)/1024, float64(c.BytesRecv)/1024)
	for i, ctr := range res.Centroids {
		preview := ctr
		if len(preview) > 6 {
			preview = preview[:6]
		}
		fmt.Printf("  centroid %d: %.3f…\n", i, preview)
	}
	_ = nd.Leave()
}

// virtualConfig is the provisioning bundle for a -vnodes run.
type virtualConfig struct {
	kf          keyFile
	scheme      chiaroscuro.Scheme
	data        *chiaroscuro.Dataset
	proto       core.Config
	prog        *progress
	vnodes      int
	population  int
	listen      string
	bootstrap   string
	metricsAddr string
	timeout     time.Duration
	joinTimeout time.Duration
	policy      node.Policy
}

// runVirtual hosts vnodes consecutive participants (key-file index
// onward) behind one mux listener: one accept loop, one shared address
// book and schedule mirror, in-process pipes between co-located pairs.
// The protocol run is bit-identical to hosting each participant in its
// own daemon. The /progress observer rides the first hosted
// participant; /metrics aggregates the whole host.
func runVirtual(vc virtualConfig) {
	if vc.kf.Index+vc.vnodes > vc.population {
		fatal(fmt.Errorf("-vnodes %d from index %d exceeds the population of %d", vc.vnodes, vc.kf.Index, vc.population))
	}
	host, err := mux.NewHost(mux.Config{
		Listen:          vc.listen,
		N:               vc.population,
		SeriesDim:       vc.data.Dim(),
		Scheme:          vc.scheme,
		Proto:           vc.proto,
		Bootstrap:       vc.bootstrap,
		ExchangeTimeout: vc.timeout,
	})
	if err != nil {
		fatal(err)
	}
	defer host.Close()
	nodes := make([]*node.Node, vc.vnodes)
	for v := 0; v < vc.vnodes; v++ {
		idx := vc.kf.Index + v
		cfg := node.Config{
			Index:           idx,
			Series:          vc.data.Row(idx),
			ExchangeTimeout: vc.timeout,
			JoinTimeout:     vc.joinTimeout,
			Policy:          vc.policy,
		}
		if v == 0 {
			cfg.Proto.Observer = vc.prog.observer()
		}
		nd, err := host.AddNode(cfg)
		if err != nil {
			fatal(err)
		}
		nodes[v] = nd
	}
	fmt.Printf("chiaroscurod: hosting nodes %d–%d of %d on %s (virtual)\n",
		vc.kf.Index, vc.kf.Index+vc.vnodes-1, vc.population, host.Addr())

	if vc.metricsAddr != "" {
		go serveMetrics(vc.metricsAddr, nodes, host, vc.prog)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	stopWatch := context.AfterFunc(ctx, func() { _ = host.Close() })
	defer stopWatch()

	fmt.Printf("chiaroscurod: waiting for %d remote peers (bootstrap %q)\n",
		vc.population-vc.vnodes, vc.bootstrap)
	if err := nodes[0].Join(); err != nil {
		if herr := host.Err(); herr != nil {
			fatal(herr)
		}
		if ctx.Err() != nil {
			fmt.Println("chiaroscurod: interrupted while waiting for peers")
			return
		}
		fatal(err)
	}
	fmt.Println("chiaroscurod: roster complete, protocol starting")
	start := time.Now()
	results := make([]*node.Result, vc.vnodes)
	errs := make([]error, vc.vnodes)
	var wg sync.WaitGroup
	for v, nd := range nodes {
		wg.Add(1)
		go func(v int, nd *node.Node) {
			defer wg.Done()
			results[v], errs[v] = nd.RunContext(ctx)
		}(v, nd)
	}
	wg.Wait()
	if errors.Is(ctx.Err(), context.Canceled) {
		fmt.Println("chiaroscurod: interrupted; listener and connections closed cleanly")
		return
	}
	for v, err := range errs {
		if err != nil {
			fatal(fmt.Errorf("node %d: %w", vc.kf.Index+v, err))
		}
	}
	fmt.Printf("chiaroscurod: run complete in %s\n", time.Since(start).Round(time.Millisecond))
	res := results[0]
	for _, tr := range res.Traces {
		fmt.Printf("  iter %d: centroids %d→%d, ε %.4f, cycles sum/diss/dec %d/%d/%d\n",
			tr.Iteration, tr.CentroidsIn, tr.CentroidsOut, tr.EpsilonSpent,
			tr.SumCycles, tr.DissCycles, tr.DecryptCycles)
	}
	var agg wireproto.Counters
	for _, r := range results {
		sumCounters(&agg, r.Counters)
	}
	sumCounters(&agg, host.Counters())
	fmt.Printf("final: %d centroids (node %d's view), ε spent %.4f, host exchanges %d (init %d / resp %d), timeouts %d, sent %.1f kB, recv %.1f kB\n",
		len(res.Centroids), vc.kf.Index, res.TotalEpsilon, agg.Exchanges(), agg.Initiated, agg.Responded,
		agg.Timeouts, float64(agg.BytesSent)/1024, float64(agg.BytesRecv)/1024)
	for i, ctr := range res.Centroids {
		preview := ctr
		if len(preview) > 6 {
			preview = preview[:6]
		}
		fmt.Printf("  centroid %d: %.3f…\n", i, preview)
	}
}

// runSoak runs the in-process chaos soak with the crash-storm profile:
// refusals, mid-frame cuts, crash-at-leg storms and modeled churn over
// a full population per run, with retries and peer suspicion on. Every
// fault decision derives from the printed seed, so a failing soak run
// replays exactly (cmd/soak exposes the individual knobs).
func runSoak(d time.Duration, population int, seed uint64) {
	fmt.Printf("chiaroscurod: soak starting — %d nodes, %s, fault seed %d (crash-storm profile)\n",
		population, d, seed)
	rep, err := soak.Run(soak.Config{
		N:        population,
		Duration: d,
		Plan: faultnet.Plan{
			Seed:       seed,
			RefuseProb: 0.05,
			CutProb:    0.03,
			CrashProb:  0.05,
			LatencyMax: 2 * time.Millisecond,
		},
		Policy: node.Policy{MaxRetries: 3, SuspicionK: 4},
		Churn:  0.1,
		Out:    os.Stdout,
	})
	if err != nil {
		fatal(err)
	}
	w := rep.Wire
	fmt.Printf("soak: fault seed %d, %d runs (%d failed) in %s\n",
		rep.Seed, rep.Runs, rep.Failures, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("soak: %d cycles (%.2f cycles/sec), last run released %d centroids\n",
		rep.Cycles, rep.CyclesPerSec(), rep.Centroids)
	fmt.Printf("soak: exchanges %d, timeouts %d, retries %d, suspected %d, evicted %d, wire %.1f kB sent / %.1f kB received\n",
		w.Initiated+w.Responded, w.Timeouts, w.Retries, w.Suspected, w.Evicted,
		float64(w.BytesSent)/1024, float64(w.BytesRecv)/1024)
	fmt.Printf("soak: peak %d goroutines, %.1f MB heap in use\n",
		rep.PeakGoroutines, float64(rep.PeakHeapBytes)/(1024*1024))
	if rep.Centroids == 0 || rep.Runs == rep.Failures {
		fatal(fmt.Errorf("soak released no centroids (last error: %v)", rep.LastErr))
	}
}

func writeKeyFiles(dir string, population, keyBits, degree, tau int) error {
	if population < 2 {
		return fmt.Errorf("population must be at least 2")
	}
	if tau <= 0 {
		tau = population / 3
		if tau < 2 {
			tau = 2
		}
	}
	// Validate the parameters build a scheme before emitting anything.
	if _, err := chiaroscuro.NewTestScheme(keyBits, degree, population, tau); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < population; i++ {
		kf := keyFile{Scheme: "dj-test", KeyBits: keyBits, Degree: degree, Shares: population, Threshold: tau, Index: i}
		raw, err := json.MarshalIndent(kf, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("node-%d.json", i))
		if err := os.WriteFile(path, append(raw, '\n'), 0o600); err != nil {
			return err
		}
	}
	fmt.Printf("chiaroscurod: wrote %d test key files to %s (NO security; see -h)\n", population, dir)
	return nil
}

func loadKeyFile(path string, population int) (keyFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return keyFile{}, err
	}
	var kf keyFile
	if err := json.Unmarshal(raw, &kf); err != nil {
		return keyFile{}, fmt.Errorf("key file %s: %w", path, err)
	}
	if kf.Scheme != "dj-test" {
		return keyFile{}, fmt.Errorf("key file %s: unsupported scheme %q", path, kf.Scheme)
	}
	if kf.Shares < population {
		return keyFile{}, fmt.Errorf("key file has %d shares for a population of %d", kf.Shares, population)
	}
	if kf.Index < 0 || kf.Index >= population {
		return keyFile{}, fmt.Errorf("key file index %d out of range", kf.Index)
	}
	return kf, nil
}

func loadData(csvPath, dataset string, size int, seed uint64) (d *chiaroscuro.Dataset, dmin, dmax float64, kind string, err error) {
	if csvPath != "" {
		d, err = chiaroscuro.LoadCSV(csvPath)
		if err != nil {
			return nil, 0, 0, "", err
		}
		dmin, dmax = d.Range()
		return d, dmin, dmax, "cer", nil
	}
	switch dataset {
	case "cer":
		d, _ = chiaroscuro.GenerateCER(size, seed)
		return d, chiaroscuro.CERMin, chiaroscuro.CERMax, "cer", nil
	case "numed":
		d, _ = chiaroscuro.GenerateNUMED(size, seed)
		return d, chiaroscuro.NUMEDMin, chiaroscuro.NUMEDMax, "numed", nil
	}
	return nil, 0, 0, "", fmt.Errorf("unknown dataset %q", dataset)
}

func sumCounters(dst *wireproto.Counters, c wireproto.Counters) {
	dst.Initiated += c.Initiated
	dst.Responded += c.Responded
	dst.Timeouts += c.Timeouts
	dst.Rejected += c.Rejected
	dst.BadFrames += c.BadFrames
	dst.Retries += c.Retries
	dst.Suspected += c.Suspected
	dst.Evicted += c.Evicted
	dst.Resumed += c.Resumed
	dst.BytesSent += c.BytesSent
	dst.BytesRecv += c.BytesRecv
}

// serveMetrics exposes wire counters and protocol progress: Prometheus
// text counters on /metrics, and the live protocol position — current
// phase cycle plus every released per-iteration centroid set so far —
// as JSON on /progress (the daemon-side view of the Job event stream).
// A virtual-node daemon passes every hosted participant plus its host:
// the counters aggregate across all of them (host membership traffic
// included), and the iteration/phase gauges follow the first hosted
// participant (all stay in lockstep by construction).
func serveMetrics(addr string, nodes []*node.Node, host *mux.Host, prog *progress) {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var c wireproto.Counters
		for _, nd := range nodes {
			sumCounters(&c, nd.Counters())
		}
		if host != nil {
			sumCounters(&c, host.Counters())
		}
		iter, phase := nodes[0].Progress()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP chiaroscuro_exchanges_total Completed exchanges by role.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_exchanges_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_exchanges_total{role=\"initiator\"} %d\n", c.Initiated)
		fmt.Fprintf(w, "chiaroscuro_exchanges_total{role=\"responder\"} %d\n", c.Responded)
		fmt.Fprintf(w, "# HELP chiaroscuro_exchange_timeouts_total Exchanges abandoned on a deadline.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_exchange_timeouts_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_exchange_timeouts_total %d\n", c.Timeouts)
		fmt.Fprintf(w, "# HELP chiaroscuro_frames_rejected_total Frames refused (version/epoch/bounds).\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_frames_rejected_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_frames_rejected_total %d\n", c.Rejected)
		fmt.Fprintf(w, "# HELP chiaroscuro_bad_frames_total Malformed or over-limit frames that dropped a connection.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_bad_frames_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_bad_frames_total %d\n", c.BadFrames)
		fmt.Fprintf(w, "# HELP chiaroscuro_exchange_retries_total Exchange attempts retried after a transient failure.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_exchange_retries_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_exchange_retries_total %d\n", c.Retries)
		fmt.Fprintf(w, "# HELP chiaroscuro_peers_suspected_total Consecutive-failure strikes recorded against peers.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_peers_suspected_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_peers_suspected_total %d\n", c.Suspected)
		fmt.Fprintf(w, "# HELP chiaroscuro_peers_evicted_total Peers evicted from the address book by suspicion.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_peers_evicted_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_peers_evicted_total %d\n", c.Evicted)
		fmt.Fprintf(w, "# HELP chiaroscuro_peers_resumed_total Resume announcements accepted from relaunched peers.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_peers_resumed_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_peers_resumed_total %d\n", c.Resumed)
		fmt.Fprintf(w, "# HELP chiaroscuro_wire_bytes_total Wire bytes by direction.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_wire_bytes_total counter\n")
		fmt.Fprintf(w, "chiaroscuro_wire_bytes_total{direction=\"sent\"} %d\n", c.BytesSent)
		fmt.Fprintf(w, "chiaroscuro_wire_bytes_total{direction=\"received\"} %d\n", c.BytesRecv)
		fmt.Fprintf(w, "# HELP chiaroscuro_iteration Current protocol iteration.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_iteration gauge\n")
		fmt.Fprintf(w, "chiaroscuro_iteration %d\n", iter)
		fmt.Fprintf(w, "# HELP chiaroscuro_phase Current phase (0 sum, 1 dissemination, 2 decryption).\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_phase gauge\n")
		fmt.Fprintf(w, "chiaroscuro_phase %d\n", phase)
		fmt.Fprintf(w, "# HELP chiaroscuro_roster_size Participants known to the address book.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_roster_size gauge\n")
		fmt.Fprintf(w, "chiaroscuro_roster_size %d\n", nodes[0].RosterSize())
		fmt.Fprintf(w, "# HELP chiaroscuro_virtual_nodes Participants hosted by this process.\n")
		fmt.Fprintf(w, "# TYPE chiaroscuro_virtual_nodes gauge\n")
		fmt.Fprintf(w, "chiaroscuro_virtual_nodes %d\n", len(nodes))
	})
	// /healthz reports where in the protocol the daemon is and how far
	// its crash-recovery journal trails the synced tail (both zero when
	// running without -state-dir): enough for an operator to tell a
	// healthy daemon from one wedged mid-phase or accumulating unsynced
	// journal writes.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		iter, phase := nodes[0].Progress()
		entries, lagBytes := nodes[0].JournalLag()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"iteration\":%d,\"phase\":%q,\"journal_lag\":{\"entries\":%d,\"bytes\":%d}}\n",
			iter, core.Phase(phase).String(), entries, lagBytes)
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "chiaroscurod: metrics:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiaroscurod:", err)
	os.Exit(1)
}
