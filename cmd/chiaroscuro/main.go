// Command chiaroscuro runs a privacy-preserving clustering end to end.
//
// Three modes mirror the library's entry points:
//
//	chiaroscuro -mode baseline  # centralized k-means, no privacy
//	chiaroscuro -mode dp        # centralized with DP release (quality path)
//	chiaroscuro -mode network   # full distributed protocol (simulated population)
//
// Data comes either from a CSV file (one series per row) or from the
// built-in generators (-dataset cer|numed).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"chiaroscuro"
)

func main() {
	var (
		mode    = flag.String("mode", "dp", "baseline, dp, or network")
		dataset = flag.String("dataset", "cer", "built-in generator: cer or numed")
		csvPath = flag.String("csv", "", "CSV file with one series per row (overrides -dataset)")
		size    = flag.Int("n", 20000, "number of series to generate")
		k       = flag.Int("k", 10, "number of clusters")
		eps     = flag.Float64("epsilon", math.Ln2, "total privacy budget")
		budget  = flag.String("budget", "G", "budget strategy: G, GF, UF")
		param   = flag.Int("budget-param", 4, "GF floor size or UF iteration limit")
		smooth  = flag.Bool("smooth", true, "SMA smoothing of perturbed means")
		maxIt   = flag.Int("iterations", 10, "maximum k-means iterations")
		churn   = flag.Float64("churn", 0, "disconnection probability")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		keyBits = flag.Int("keybits", 256, "Damgård–Jurik key size for -mode network (128/256/512/1024)")
		real    = flag.Bool("realcrypto", false, "network mode: real Damgård–Jurik instead of simulated encryption")
	)
	flag.Parse()

	data, dmin, dmax, kind, err := loadData(*csvPath, *dataset, *size, *seed)
	if err != nil {
		fatal(err)
	}
	seeds := chiaroscuro.SeedCentroids(kind, *k, *seed+1)
	fmt.Printf("dataset: %d series × %d measures in [%g, %g]\n", data.Len(), data.Dim(), dmin, dmax)

	switch *mode {
	case "baseline":
		res, err := chiaroscuro.Cluster(data, chiaroscuro.ClusterOptions{
			InitCentroids: seeds, MaxIterations: *maxIt,
		})
		if err != nil {
			fatal(err)
		}
		printStats("centralized k-means (no privacy)", res)

	case "dp":
		b, err := makeBudget(*budget, *eps, *param)
		if err != nil {
			fatal(err)
		}
		res, err := chiaroscuro.ClusterDP(data, chiaroscuro.DPOptions{
			InitCentroids: seeds,
			Budget:        b,
			DMin:          dmin, DMax: dmax,
			Smooth:        *smooth,
			MaxIterations: *maxIt,
			Churn:         *churn,
			Seed:          *seed,
		})
		if err != nil {
			fatal(err)
		}
		printStats(fmt.Sprintf("perturbed k-means (%s, ε=%.3f)", *budget, *eps), res)

	case "network":
		if data.Len() > 512 {
			fatal(fmt.Errorf("network mode simulates one participant per series; use -n <= 512 (got %d)", data.Len()))
		}
		var scheme chiaroscuro.Scheme
		if *real {
			scheme, err = chiaroscuro.NewTestScheme(*keyBits, 3, data.Len(), max(2, data.Len()/4))
		} else {
			scheme, err = chiaroscuro.NewSimulationScheme(*keyBits/4, data.Len(), max(2, data.Len()/4))
		}
		if err != nil {
			fatal(err)
		}
		b, err := makeBudget(*budget, *eps, *param)
		if err != nil {
			fatal(err)
		}
		res, err := chiaroscuro.Run(data, scheme, chiaroscuro.NetworkOptions{
			K:             *k,
			InitCentroids: seeds,
			DMin:          dmin, DMax: dmax,
			Epsilon:       *eps,
			Budget:        b,
			MaxIterations: *maxIt,
			Smooth:        *smooth,
			Churn:         *churn,
			Seed:          *seed,
			TraceQuality:  true,
		})
		if err != nil {
			fatal(err)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "iter\tcentroids\tε spent\tsum cycles\tdecrypt cycles\tagreement\tinertia")
		for _, tr := range res.Traces {
			fmt.Fprintf(w, "%d\t%d→%d\t%.4f\t%d\t%d\t%.2e\t%.4g\n",
				tr.Iteration, tr.CentroidsIn, tr.CentroidsOut, tr.EpsilonSpent,
				tr.SumCycles, tr.DecryptCycles, tr.Agreement, tr.PreInertia)
		}
		w.Flush()
		fmt.Printf("final: %d centroids, ε spent %.4f, %.0f msgs/participant, %.1f kB/participant\n",
			len(res.Centroids), res.TotalEpsilon, res.AvgMessages, res.AvgBytes/1024)

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func loadData(csvPath, dataset string, size int, seed uint64) (d *chiaroscuro.Dataset, dmin, dmax float64, kind string, err error) {
	if csvPath != "" {
		d, err = chiaroscuro.LoadCSV(csvPath)
		if err != nil {
			return nil, 0, 0, "", err
		}
		dmin, dmax = d.Range()
		return d, dmin, dmax, "cer", nil
	}
	switch dataset {
	case "cer":
		d, _ = chiaroscuro.GenerateCER(size, seed)
		return d, chiaroscuro.CERMin, chiaroscuro.CERMax, "cer", nil
	case "numed":
		d, _ = chiaroscuro.GenerateNUMED(size, seed)
		return d, chiaroscuro.NUMEDMin, chiaroscuro.NUMEDMax, "numed", nil
	}
	return nil, 0, 0, "", fmt.Errorf("unknown dataset %q", dataset)
}

func makeBudget(name string, eps float64, param int) (chiaroscuro.Budget, error) {
	switch name {
	case "G":
		return chiaroscuro.Greedy(eps), nil
	case "GF":
		return chiaroscuro.GreedyFloor(eps, param), nil
	case "UF":
		return chiaroscuro.UniformFast(eps, param), nil
	}
	return nil, fmt.Errorf("unknown budget strategy %q (want G, GF, UF)", name)
}

func printStats(title string, res *chiaroscuro.ClusterResult) {
	fmt.Println(title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "iter\tinertia\tpost-inertia\tcentroids\tε spent")
	for _, s := range res.Stats {
		fmt.Fprintf(w, "%d\t%.4g\t%.4g\t%d\t%.4f\n",
			s.Iteration, s.Inertia, s.PostInertia, s.Centroids, s.EpsilonSpent)
	}
	w.Flush()
	fmt.Printf("final: %d centroids, converged=%v, ε spent %.4f\n",
		len(res.Centroids), res.Converged, res.TotalEpsilon)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiaroscuro:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
