// Command chiaroscuro runs a privacy-preserving clustering end to end
// through the unified Job API, streaming each iteration's released
// centroids as the protocol decrypts them.
//
// Four modes mirror the library's Job modes:
//
//	chiaroscuro -mode baseline   # centralized k-means, no privacy
//	chiaroscuro -mode dp         # centralized with DP release (quality path)
//	chiaroscuro -mode network    # full distributed protocol (simulated population)
//	chiaroscuro -mode networked  # same protocol over real loopback TCP
//
// Data comes either from a CSV file (one series per row) or from the
// built-in generators (-dataset cer|numed).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"chiaroscuro"
)

func main() {
	var (
		mode    = flag.String("mode", "dp", "baseline, dp, network, or networked")
		dataset = flag.String("dataset", "cer", "built-in generator: cer or numed")
		csvPath = flag.String("csv", "", "CSV file with one series per row (overrides -dataset)")
		size    = flag.Int("n", 20000, "number of series to generate")
		k       = flag.Int("k", 10, "number of clusters")
		eps     = flag.Float64("epsilon", math.Ln2, "total privacy budget")
		budget  = flag.String("budget", "G", "budget strategy: G, GF, UF")
		param   = flag.Int("budget-param", 4, "GF floor size or UF iteration limit")
		smooth  = flag.Bool("smooth", true, "SMA smoothing of perturbed means")
		maxIt   = flag.Int("iterations", 10, "maximum k-means iterations")
		churn   = flag.Float64("churn", 0, "disconnection probability")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		keyBits = flag.Int("keybits", 256, "Damgård–Jurik key size for the distributed modes (128/256/512/1024)")
		real    = flag.Bool("realcrypto", false, "network mode: real Damgård–Jurik instead of simulated encryption")
		quiet   = flag.Bool("quiet", false, "suppress the live per-iteration event stream")
	)
	flag.Parse()

	data, dmin, dmax, kind, err := loadData(*csvPath, *dataset, *size, *seed)
	if err != nil {
		fatal(err)
	}
	seeds := chiaroscuro.SeedCentroids(kind, *k, *seed+1)
	fmt.Printf("dataset: %d series × %d measures in [%g, %g]\n", data.Len(), data.Dim(), dmin, dmax)

	opts := chiaroscuro.Options{
		InitCentroids: seeds,
		K:             *k,
		DMin:          dmin, DMax: dmax,
		Epsilon:       *eps,
		Smooth:        *smooth,
		MaxIterations: *maxIt,
		Churn:         *churn,
		Seed:          *seed,
	}
	title := ""
	switch *mode {
	case "baseline":
		opts.Mode = chiaroscuro.Centralized
		opts.Epsilon, opts.Churn = 0, 0
		title = "centralized k-means (no privacy)"

	case "dp":
		opts.Mode = chiaroscuro.CentralizedDP
		if opts.Budget, err = makeBudget(*budget, *eps, *param); err != nil {
			fatal(err)
		}
		title = fmt.Sprintf("perturbed k-means (%s, ε=%.3f)", *budget, *eps)

	case "network", "networked":
		if data.Len() > 512 {
			fatal(fmt.Errorf("the distributed modes simulate one participant per series; use -n <= 512 (got %d)", data.Len()))
		}
		if opts.Budget, err = makeBudget(*budget, *eps, *param); err != nil {
			fatal(err)
		}
		if *real || *mode == "networked" {
			opts.Scheme, err = chiaroscuro.NewTestScheme(*keyBits, 3, data.Len(), max(2, data.Len()/4))
		} else {
			opts.Scheme, err = chiaroscuro.NewSimulationScheme(*keyBits/4, data.Len(), max(2, data.Len()/4))
		}
		if err != nil {
			fatal(err)
		}
		if *mode == "networked" {
			opts.Mode = chiaroscuro.Networked
			title = "distributed protocol (real loopback TCP)"
		} else {
			opts.Mode = chiaroscuro.Simulated
			opts.TraceQuality = true
			title = "distributed protocol (simulated population)"
		}

	default:
		fatal(fmt.Errorf("unknown mode %q (want baseline, dp, network, or networked)", *mode))
	}

	job, err := chiaroscuro.NewJob(data, opts)
	if err != nil {
		fatal(err)
	}
	var res *chiaroscuro.Result
	if *quiet {
		// No subscription at all: a silent run keeps the zero-cost
		// no-subscriber emission path.
		res, err = job.Run(context.Background())
	} else {
		// Stream the per-iteration releases live — the Diptych discloses
		// one cleartext centroid set per iteration by design; show them
		// as they happen instead of after the whole run.
		events := job.Events()
		go job.Run(context.Background())
		for ev := range events {
			if rel, ok := ev.(chiaroscuro.IterationReleased); ok {
				fmt.Printf("released iteration %d: %d centroids (ε %.4f)\n",
					rel.Iteration, len(rel.Centroids), rel.EpsilonSpent)
			}
		}
		res, err = job.Wait()
	}
	if err != nil {
		fatal(err)
	}

	fmt.Println(title)
	switch opts.Mode {
	case chiaroscuro.Centralized, chiaroscuro.CentralizedDP:
		printStats(res)
	default:
		printTraces(res)
	}
}

func loadData(csvPath, dataset string, size int, seed uint64) (d *chiaroscuro.Dataset, dmin, dmax float64, kind string, err error) {
	if csvPath != "" {
		d, err = chiaroscuro.LoadCSV(csvPath)
		if err != nil {
			return nil, 0, 0, "", err
		}
		dmin, dmax = d.Range()
		return d, dmin, dmax, "cer", nil
	}
	switch dataset {
	case "cer":
		d, _ = chiaroscuro.GenerateCER(size, seed)
		return d, chiaroscuro.CERMin, chiaroscuro.CERMax, "cer", nil
	case "numed":
		d, _ = chiaroscuro.GenerateNUMED(size, seed)
		return d, chiaroscuro.NUMEDMin, chiaroscuro.NUMEDMax, "numed", nil
	}
	return nil, 0, 0, "", fmt.Errorf("unknown dataset %q", dataset)
}

func makeBudget(name string, eps float64, param int) (chiaroscuro.Budget, error) {
	switch name {
	case "G":
		return chiaroscuro.Greedy(eps), nil
	case "GF":
		return chiaroscuro.GreedyFloor(eps, param), nil
	case "UF":
		return chiaroscuro.UniformFast(eps, param), nil
	}
	return nil, fmt.Errorf("unknown budget strategy %q (want G, GF, UF)", name)
}

func printStats(res *chiaroscuro.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "iter\tinertia\tpost-inertia\tcentroids\tε spent")
	for _, s := range res.Stats {
		fmt.Fprintf(w, "%d\t%.4g\t%.4g\t%d\t%.4f\n",
			s.Iteration, s.Inertia, s.PostInertia, s.Centroids, s.EpsilonSpent)
	}
	w.Flush()
	fmt.Printf("final: %d centroids, converged=%v, ε spent %.4f\n",
		len(res.Centroids), res.Converged, res.TotalEpsilon)
}

func printTraces(res *chiaroscuro.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "iter\tcentroids\tε spent\tsum cycles\tdecrypt cycles\tagreement\tinertia")
	for _, tr := range res.Traces {
		fmt.Fprintf(w, "%d\t%d→%d\t%.4f\t%d\t%d\t%.2e\t%.4g\n",
			tr.Iteration, tr.CentroidsIn, tr.CentroidsOut, tr.EpsilonSpent,
			tr.SumCycles, tr.DecryptCycles, tr.Agreement, tr.PreInertia)
	}
	w.Flush()
	fmt.Printf("final: %d centroids, ε spent %.4f, %.0f msgs/participant, %.1f kB/participant\n",
		len(res.Centroids), res.TotalEpsilon, res.AvgMessages, res.AvgBytes/1024)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chiaroscuro:", err)
	os.Exit(1)
}
