// Command soak is the Chiaroscuro chaos soak driver: it runs an
// in-process networked population in a loop under a seeded fault plan —
// connection refusals, asymmetric partitions, mid-frame cuts, added
// latency, crash storms — plus the Section 6.1.5 churn model and a join
// flood per run, and reports sustained gossip cycles per second and
// wire bytes. Every fault decision derives from -seed, so a failing run
// replays exactly.
//
// A 30-second crash storm over 8 nodes with retries and suspicion:
//
//	soak -duration 30s -crash-prob 0.05 -churn 0.1 \
//	    -retries 3 -suspicion-k 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chiaroscuro/internal/faultnet"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/soak"
)

func main() {
	var (
		n          = flag.Int("population", 8, "population size")
		duration   = flag.Duration("duration", 30*time.Second, "soak wall-clock bound (0 = one run)")
		seed       = flag.Uint64("seed", 1, "fault plan seed for run 0 (run r uses seed+r)")
		refuse     = flag.Float64("refuse-prob", 0, "per-dial connection refusal probability")
		partition  = flag.Float64("partition-prob", 0, "per directed pair asymmetric partition probability")
		cut        = flag.Float64("cut-prob", 0, "per-dial mid-frame connection cut probability")
		latency    = flag.Duration("latency-max", 0, "per-attempt added write latency bound")
		crash      = flag.Float64("crash-prob", 0, "per exchange-slot crash-at-leg probability")
		churn      = flag.Float64("churn", 0, "modeled churn probability per gossip cycle")
		retries    = flag.Int("retries", 0, "exchange retry budget per slot")
		backoff    = flag.Duration("backoff", 0, "initial retry backoff (0 = default when retries > 0)")
		suspicionK = flag.Int("suspicion-k", 0, "evict a peer after this many consecutive failures (0 = never)")
		iterations = flag.Int("iterations", 1, "protocol iterations per run")
		workers    = flag.Int("workers", 1, "crypto workers per node")
	)
	flag.Parse()

	rep, err := soak.Run(soak.Config{
		N:        *n,
		Duration: *duration,
		Plan: faultnet.Plan{
			Seed:          *seed,
			RefuseProb:    *refuse,
			PartitionProb: *partition,
			CutProb:       *cut,
			LatencyMax:    *latency,
			CrashProb:     *crash,
		},
		Policy:     node.Policy{MaxRetries: *retries, Backoff: *backoff, SuspicionK: *suspicionK},
		Churn:      *churn,
		Iterations: *iterations,
		Workers:    *workers,
		Out:        os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
	printReport(rep)
	if rep.Runs == rep.Failures {
		fmt.Fprintln(os.Stderr, "soak: every run failed")
		os.Exit(1)
	}
}

func printReport(rep *soak.Report) {
	fmt.Printf("soak: fault seed %d, %d runs (%d failed) in %s\n",
		rep.Seed, rep.Runs, rep.Failures, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("soak: %d cycles (%.2f cycles/sec), last run released %d centroids\n",
		rep.Cycles, rep.CyclesPerSec(), rep.Centroids)
	w := rep.Wire
	fmt.Printf("soak: exchanges %d (init %d / resp %d), timeouts %d, retries %d, suspected %d, evicted %d, bad frames %d\n",
		w.Initiated+w.Responded, w.Initiated, w.Responded, w.Timeouts, w.Retries, w.Suspected, w.Evicted, w.BadFrames)
	fmt.Printf("soak: wire %.1f kB sent, %.1f kB received\n",
		float64(w.BytesSent)/1024, float64(w.BytesRecv)/1024)
	if rep.LastErr != nil {
		fmt.Printf("soak: last failure: %v\n", rep.LastErr)
	}
}
