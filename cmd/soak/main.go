// Command soak is the Chiaroscuro chaos soak driver: it runs an
// in-process networked population in a loop under a seeded fault plan —
// connection refusals, asymmetric partitions, mid-frame cuts, added
// latency, crash storms — plus the Section 6.1.5 churn model and a join
// flood per run, and reports sustained gossip cycles per second and
// wire bytes. Every fault decision derives from -seed, so a failing run
// replays exactly.
//
// A 30-second crash storm over 8 nodes with retries and suspicion:
//
//	soak -duration 30s -crash-prob 0.05 -churn 0.1 \
//	    -retries 3 -suspicion-k 4
//
// The restart storm: every peer keeps a durable crash-recovery journal
// and a supervisor kills random live peers mid-protocol, relaunching
// each from its journal (it rebinds its recorded address and rejoins
// with a Resume handshake). A 30-second storm:
//
//	soak -duration 30s -kill-prob 0.05 -retries 3 -suspicion-k 6 \
//	    -sim-scheme -tau 2 -iterations 3
//
// The paper-scale load shape: -vnodes runs the whole population as
// virtual nodes behind one mux listener (in-process pipes, one schedule
// mirror), -sim-scheme swaps Damgård–Jurik for the arithmetic-faithful
// plaintext scheme so the run measures runtime capacity instead of
// exponentiation, and -shards splits the total population into
// independent sub-populations run back to back — each with a seed
// derived from (-seed, shard id), so any shard replays alone with
// -shards 1 -shard-offset ID. Two such processes sustain a combined
// 100k+ peers:
//
//	soak -vnodes -sim-scheme -population 25000 -shards 2 -tau 5 \
//	    -exchange-timeout 10m -duration 0 &
//	soak -vnodes -sim-scheme -population 25000 -shards 2 -shard-offset 2 \
//	    -tau 5 -exchange-timeout 10m -duration 0
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chiaroscuro/internal/faultnet"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/soak"
)

func main() {
	var (
		n          = flag.Int("population", 8, "population size (per shard)")
		duration   = flag.Duration("duration", 30*time.Second, "soak wall-clock bound per shard (0 = one run)")
		seed       = flag.Uint64("seed", 1, "fault plan seed for run 0 (run r uses seed+r; shards derive per-shard seeds)")
		refuse     = flag.Float64("refuse-prob", 0, "per-dial connection refusal probability")
		partition  = flag.Float64("partition-prob", 0, "per directed pair asymmetric partition probability")
		cut        = flag.Float64("cut-prob", 0, "per-dial mid-frame connection cut probability")
		latency    = flag.Duration("latency-max", 0, "per-attempt added write latency bound")
		crash      = flag.Float64("crash-prob", 0, "per exchange-slot crash-at-leg probability")
		churn      = flag.Float64("churn", 0, "modeled churn probability per gossip cycle")
		retries    = flag.Int("retries", 0, "exchange retry budget per slot")
		backoff    = flag.Duration("backoff", 0, "initial retry backoff (0 = default when retries > 0)")
		suspicionK = flag.Int("suspicion-k", 0, "evict a peer after this many consecutive failures (0 = never)")
		iterations = flag.Int("iterations", 1, "protocol iterations per run")
		workers    = flag.Int("workers", 1, "crypto workers per node")
		vnodes     = flag.Bool("vnodes", false, "run the population as virtual nodes behind one mux listener")
		simScheme  = flag.Bool("sim-scheme", false, "use the plaintext simulation scheme (runtime capacity, not crypto throughput)")
		tau        = flag.Int("tau", 0, "decryption threshold override (0 = max(2, population/3))")
		exTimeout  = flag.Duration("exchange-timeout", 0, "per-exchange deadline override (0 = 2s; large -vnodes populations need minutes)")
		shards     = flag.Int("shards", 1, "independent sub-populations to run back to back in this process")
		shardOff   = flag.Int("shard-offset", 0, "global id of this process's first shard (for multi-process populations)")
		killProb   = flag.Float64("kill-prob", 0, "restart storm: per ~50ms tick probability of killing one random live peer and relaunching it from its journal (TCP shape only)")
		stateDir   = flag.String("state-dir", "", "directory for restart-storm crash-recovery journals (default: a temp dir)")
	)
	flag.Parse()

	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "soak: -shards must be at least 1")
		os.Exit(1)
	}
	total := &soak.Report{}
	for s := 0; s < *shards; s++ {
		shardID := *shardOff + s
		shardSeed := shardSeed(*seed, shardID)
		if *shards > 1 || *shardOff > 0 {
			fmt.Printf("soak: shard %d (population %d, seed %d)\n", shardID, *n, shardSeed)
		}
		rep, err := soak.Run(soak.Config{
			N:        *n,
			Duration: *duration,
			Plan: faultnet.Plan{
				Seed:          shardSeed,
				RefuseProb:    *refuse,
				PartitionProb: *partition,
				CutProb:       *cut,
				LatencyMax:    *latency,
				CrashProb:     *crash,
			},
			Policy:          node.Policy{MaxRetries: *retries, Backoff: *backoff, SuspicionK: *suspicionK},
			Churn:           *churn,
			Iterations:      *iterations,
			Workers:         *workers,
			Tau:             *tau,
			VirtualNodes:    *vnodes,
			SimScheme:       *simScheme,
			ExchangeTimeout: *exTimeout,
			KillProb:        *killProb,
			StateDir:        *stateDir,
			Out:             os.Stdout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(1)
		}
		printReport(rep)
		mergeReport(total, rep)
	}
	if *shards > 1 {
		fmt.Printf("soak: === %d shards, %d peers total ===\n", *shards, *shards**n)
		printReport(total)
	}
	if total.Runs == total.Failures {
		fmt.Fprintln(os.Stderr, "soak: every run failed")
		os.Exit(1)
	}
}

// shardSeed derives shard s's replayable fault seed from the base seed
// (SplitMix64 finalizer — matches the faultnet mixer family, so shard
// streams are decorrelated but each shard replays alone from its
// printed seed).
func shardSeed(base uint64, s int) uint64 {
	if s == 0 {
		return base // -shards 1 stays byte-compatible with old runs
	}
	x := base ^ (0x9E3779B97F4A7C15 * uint64(int64(s)))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mergeReport(dst, rep *soak.Report) {
	if dst.Runs == 0 {
		dst.Seed = rep.Seed
	}
	dst.Runs += rep.Runs
	dst.Failures += rep.Failures
	dst.Cycles += rep.Cycles
	dst.Elapsed += rep.Elapsed
	dst.Centroids = rep.Centroids
	if rep.LastErr != nil {
		dst.LastErr = rep.LastErr
	}
	w, a := rep.Wire, &dst.Wire
	a.Initiated += w.Initiated
	a.Responded += w.Responded
	a.Timeouts += w.Timeouts
	a.Rejected += w.Rejected
	a.BadFrames += w.BadFrames
	a.Retries += w.Retries
	a.Suspected += w.Suspected
	a.Evicted += w.Evicted
	a.Resumed += w.Resumed
	a.BytesSent += w.BytesSent
	a.BytesRecv += w.BytesRecv
	dst.Kills += rep.Kills
	dst.Resumes += rep.Resumes
	dst.PeakGoroutines = max(dst.PeakGoroutines, rep.PeakGoroutines)
	dst.PeakHeapBytes = max(dst.PeakHeapBytes, rep.PeakHeapBytes)
}

func printReport(rep *soak.Report) {
	fmt.Printf("soak: fault seed %d, %d runs (%d failed) in %s\n",
		rep.Seed, rep.Runs, rep.Failures, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("soak: %d cycles (%.2f cycles/sec), last run released %d centroids\n",
		rep.Cycles, rep.CyclesPerSec(), rep.Centroids)
	w := rep.Wire
	fmt.Printf("soak: exchanges %d (init %d / resp %d), timeouts %d, retries %d, suspected %d, evicted %d, bad frames %d\n",
		w.Initiated+w.Responded, w.Initiated, w.Responded, w.Timeouts, w.Retries, w.Suspected, w.Evicted, w.BadFrames)
	if rep.Kills > 0 || rep.Resumes > 0 || w.Resumed > 0 {
		fmt.Printf("soak: restart storm: %d kills, %d journal resumes, %d resume announcements accepted\n",
			rep.Kills, rep.Resumes, w.Resumed)
	}
	fmt.Printf("soak: wire %.1f kB sent, %.1f kB received\n",
		float64(w.BytesSent)/1024, float64(w.BytesRecv)/1024)
	fmt.Printf("soak: peak %d goroutines, %.1f MB heap in use\n",
		rep.PeakGoroutines, float64(rep.PeakHeapBytes)/(1024*1024))
	if rep.LastErr != nil {
		fmt.Printf("soak: last failure: %v\n", rep.LastErr)
	}
}
