// Command benchfig regenerates the paper's tables and figures.
//
// Usage:
//
//	benchfig [-scale ci|small|paper] [-seed N] [-csv] <id>|all
//
// Experiment ids: table2, fig2a..fig2f, fig3a, fig3b, fig4a, fig4b,
// fig5a, fig5b, fig6. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chiaroscuro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "ci", "experiment scale: ci, small, or paper")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchfig [-scale ci|small|paper] [-seed N] [-csv] <id>|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(experiments.IDs(), " "))
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	params := experiments.Params{Scale: scale, Seed: *seed}

	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		table, err := gen(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
			fmt.Printf("# generated in %v at scale %s\n\n", time.Since(start).Round(time.Millisecond), scale)
		}
	}
}
