// Command benchfig regenerates the paper's tables and figures.
//
// Usage:
//
//	benchfig [-scale ci|small|paper] [-seed N] [-csv] [-json DIR] <id>|all|gobench
//
// Experiment ids: table2, fig2a..fig2f, fig3a, fig3b, fig4a, fig4b,
// fig5a, fig5b, fig6. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// With -json DIR, every experiment additionally writes a
// machine-readable BENCH_<id>.json record (name, ns_op, row count) to
// DIR, so the performance trajectory is tracked across PRs. The
// special id "gobench" instead parses `go test -bench` output from
// stdin and writes one BENCH_<name>.json per benchmark (name, ns/op,
// and every custom metric), e.g.:
//
//	go test -bench DJ -benchmem . | benchfig -json perf gobench
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"chiaroscuro/internal/experiments"
)

// benchRecord is the machine-readable BENCH_*.json schema.
type benchRecord struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Experiment-only fields.
	Scale string `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	Rows  int    `json:"rows,omitempty"`
}

func main() {
	scaleFlag := flag.String("scale", "ci", "experiment scale: ci, small, or paper")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_*.json records")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchfig [-scale ci|small|paper] [-seed N] [-csv] [-json DIR] <id>|all|gobench\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(experiments.IDs(), " "))
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "gobench" {
		if *jsonDir == "" {
			fmt.Fprintln(os.Stderr, "gobench requires -json DIR")
			os.Exit(2)
		}
		if err := parseGoBench(os.Stdin, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	params := experiments.Params{Scale: scale, Seed: *seed}

	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		table, err := gen(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
			fmt.Printf("# generated in %v at scale %s\n\n", elapsed.Round(time.Millisecond), scale)
		}
		if *jsonDir != "" {
			rec := benchRecord{
				Name:    id,
				NsPerOp: float64(elapsed.Nanoseconds()),
				Scale:   scale.String(),
				Seed:    *seed,
				Rows:    len(table.Rows),
			}
			if err := writeRecord(*jsonDir, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// parseGoBench converts standard `go test -bench` output lines
//
//	BenchmarkDJEncrypt1024-8   675   1843505 ns/op   15944 B/op   58 allocs/op
//
// into one BENCH_<name>.json record each, keeping ns/op and every
// remaining value/unit metric pair (B/op, allocs/op, custom
// b.ReportMetric units).
func parseGoBench(src *os.File, dir string) error {
	sc := bufio.NewScanner(src)
	found := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		rec := benchRecord{Name: name, Metrics: map[string]float64{}}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				rec.NsPerOp = v
			} else {
				rec.Metrics[fields[i+1]] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		if err := writeRecord(dir, rec); err != nil {
			return err
		}
		found++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if found == 0 {
		return fmt.Errorf("benchfig: no benchmark lines found on stdin")
	}
	fmt.Fprintf(os.Stderr, "benchfig: wrote %d BENCH_*.json records to %s\n", found, dir)
	return nil
}

func writeRecord(dir string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	// Sub-benchmark names (b.Run) contain '/'; flatten them so the
	// record stays a single file directly under dir.
	name := strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(rec.Name)
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), buf, 0o644)
}
