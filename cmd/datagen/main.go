// Command datagen emits the synthetic evaluation datasets as CSV.
//
//	datagen -dataset cer   -n 100000 -o cer.csv
//	datagen -dataset numed -n 100000 -o numed.csv
//	datagen -dataset a3    -replicas 100 -o a3.csv
//
// With -profiles it instead emits the labeled per-user candidate
// profile set the adversarial privacy bench (internal/attack,
// cmd/attack) links against released centroids: for every series of the
// dataset, -profile-reps noisy side-channel observations (Gaussian
// observation noise of -profile-noise standard deviation, clamped to
// the dataset range), each row prefixed with its ground-truth user and
// repetition labels. The observation stream draws from a SplitMix64
// seed derived from -seed (printed, like cmd/soak's shard seeds) so the
// profile set replays on its own:
//
//	datagen -dataset cer -n 1000 -profiles -profile-noise 2 -o profiles.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"chiaroscuro"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/randx"
)

func main() {
	var (
		dataset  = flag.String("dataset", "cer", "cer, numed, or a3")
		n        = flag.Int("n", 100000, "number of series (cer/numed)")
		replicas = flag.Int("replicas", 100, "replication factor (a3)")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("o", "", "output file (default stdout)")

		profiles     = flag.Bool("profiles", false, "emit the labeled per-user candidate profile set instead of the raw dataset")
		profileReps  = flag.Int("profile-reps", 1, "noisy observations per user (-profiles)")
		profileNoise = flag.Float64("profile-noise", 2.0, "observation-noise standard deviation in measure units (-profiles)")
	)
	flag.Parse()

	var (
		d      *chiaroscuro.Dataset
		lo, hi float64
	)
	switch *dataset {
	case "cer":
		d, _ = chiaroscuro.GenerateCER(*n, *seed)
		lo, hi = datasets.CERMin, datasets.CERMax
	case "numed":
		d, _ = chiaroscuro.GenerateNUMED(*n, *seed)
		lo, hi = datasets.NUMEDMin, datasets.NUMEDMax
	case "a3":
		rng := randx.New(*seed, 0xA3)
		base, _ := datasets.GenerateA3Base(rng)
		d = datasets.ReplicateJitter(base, *replicas, 0.5, rng)
		lo, hi = datasets.A3Min, datasets.A3Max
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *profiles {
		pseed := datasets.ProfileSeed(*seed)
		ps := datasets.GenerateProfiles(d, *profileReps, *profileNoise, lo, hi,
			randx.New(pseed, 0x90F))
		fmt.Fprintf(os.Stderr, "datagen: profile seed %d (replays the observation stream alone)\n", pseed)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriterSize(w, 1<<20)
		if err := datasets.WriteProfilesCSV(bw, ps); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if *out != "" {
			fmt.Printf("wrote %d profiles (%d users × %d reps) to %s\n",
				len(ps), d.Len(), *profileReps, *out)
		}
		return
	}

	if *out == "" {
		if err := datasets.WriteCSV(os.Stdout, d); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	if err := chiaroscuro.SaveCSV(*out, d); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d series × %d measures to %s\n", d.Len(), d.Dim(), *out)
}
