// Command datagen emits the synthetic evaluation datasets as CSV.
//
//	datagen -dataset cer   -n 100000 -o cer.csv
//	datagen -dataset numed -n 100000 -o numed.csv
//	datagen -dataset a3    -replicas 100 -o a3.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"chiaroscuro"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/randx"
)

func main() {
	var (
		dataset  = flag.String("dataset", "cer", "cer, numed, or a3")
		n        = flag.Int("n", 100000, "number of series (cer/numed)")
		replicas = flag.Int("replicas", 100, "replication factor (a3)")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var d *chiaroscuro.Dataset
	switch *dataset {
	case "cer":
		d, _ = chiaroscuro.GenerateCER(*n, *seed)
	case "numed":
		d, _ = chiaroscuro.GenerateNUMED(*n, *seed)
	case "a3":
		rng := randx.New(*seed, 0xA3)
		base, _ := datasets.GenerateA3Base(rng)
		d = datasets.ReplicateJitter(base, *replicas, 0.5, rng)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *out == "" {
		if err := datasets.WriteCSV(os.Stdout, d); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	if err := chiaroscuro.SaveCSV(*out, d); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d series × %d measures to %s\n", d.Len(), d.Dim(), *out)
}
